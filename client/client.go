// Package client is the resilient Go SDK for the isrl interactive-search
// server. It wraps the JSON/HTTP session protocol (see internal/server) with
// the retry machinery a real deployment needs: per-attempt timeouts under a
// caller-supplied context deadline, capped exponential backoff with jitter
// that honors Retry-After, and a per-host circuit breaker that fails fast
// while a server is down instead of hammering it.
//
// Every call is safe to retry because the server side is exactly-once:
// session creation carries an Idempotency-Key (a retried create lands on the
// existing session), and every answer carries the 1-based round index it
// targets (a duplicate re-delivers the stored next question instead of
// re-applying the preference). The SDK therefore retries POSTs as freely as
// GETs — the property the chaos suite pins down by running full sessions
// through a fault-injecting proxy and asserting byte-identical results.
//
// The package is stdlib-only (plus the repo's own obs metrics and fault
// injection hooks). Typical use:
//
//	c := client.New("http://localhost:8080")
//	res, err := c.Run(ctx, func(q client.Question) bool {
//	    return ask(q.First, q.Second) // true: prefer First
//	})
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"isrl/internal/fault"
	"isrl/internal/obs"
)

// Defaults for the retry machinery. They favor interactive latency: a
// handful of quick attempts with sub-second backoff, not minutes of
// patience.
const (
	DefaultAttempts        = 5
	DefaultPerTryTimeout   = 10 * time.Second
	DefaultBackoffBase     = 50 * time.Millisecond
	DefaultBackoffMax      = 2 * time.Second
	DefaultBreakerTrips    = 8
	DefaultBreakerCooldown = time.Second
)

// maxResponseBytes bounds how much of a response body the SDK reads; session
// payloads are a few KB, so anything past this is a broken server, not data.
const maxResponseBytes = 1 << 20

// ErrBreakerOpen is wrapped by request errors rejected locally because the
// target host's circuit breaker is open.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// ErrAttemptsExhausted is wrapped by request errors that ran out of retry
// attempts; errors.Is it to distinguish "gave up" from "server said no".
var ErrAttemptsExhausted = errors.New("client: retry attempts exhausted")

// APIError is a non-retryable server response (a 4xx other than 429).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// ConflictError is a 409 answer rejection: the round index sent does not
// match the server's protocol state. Expected is the round the server wants
// next, so the caller can resynchronize with one Get.
type ConflictError struct {
	Expected int
	Message  string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("client: round conflict (server expects round %d): %s", e.Expected, e.Message)
}

// Client is a resilient handle on an isrl deployment — one server, or a
// primary/standby pair (NewMulti). It is safe for concurrent use; all
// configuration happens at construction.
type Client struct {
	eps      []endpoint
	hc       *http.Client
	attempts int
	perTry   time.Duration
	boBase   time.Duration
	boMax    time.Duration
	br       *breaker
	log      *slog.Logger
	reg      *obs.Registry

	// rng feeds backoff jitter only; idempotency keys come from crypto/rand
	// so two clients seeded identically for test determinism can never
	// collide on a key.
	rmu sync.Mutex
	rng *mrand.Rand

	// preferred is the endpoint index new attempts start from; failover
	// rotates it, a definitive response pins it. Guarded by emu.
	emu       sync.Mutex
	preferred int

	mRequests  *obs.Counter
	mAttempts  *obs.Counter
	mRetries   *obs.Counter
	mFailures  *obs.Counter
	mFailovers *obs.Counter
}

// endpoint is one server base URL plus the host label its breaker state and
// logs are keyed by.
type endpoint struct {
	base string
	host string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying http.Client (custom transport, proxy,
// test doubles). The SDK applies its own per-attempt timeouts, so the
// injected client's Timeout should usually stay zero.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithAttempts caps how many times one logical call touches the wire. Values
// below 1 are treated as 1 (no retries).
func WithAttempts(n int) Option {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.attempts = n
	}
}

// WithPerTryTimeout bounds each individual attempt. The caller's context
// deadline still bounds the whole call; the per-try timeout just makes sure
// one black-holed connection cannot eat the entire budget.
func WithPerTryTimeout(d time.Duration) Option {
	return func(c *Client) { c.perTry = d }
}

// WithBackoff sets the exponential backoff schedule: base doubles per
// attempt and is capped at max, then jittered to [d/2, d). A Retry-After
// from the server acts as a floor on top.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.boBase, c.boMax = base, max }
}

// WithJitterSeed makes backoff jitter deterministic — for tests that pin
// retry schedules. Production clients should leave the default
// (time-seeded) source.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = mrand.New(mrand.NewSource(seed)) }
}

// WithBreaker tunes the per-host circuit breaker: the breaker opens after
// trips consecutive failures and probes again after cooldown. trips <= 0
// disables the breaker entirely.
func WithBreaker(trips int, cooldown time.Duration) Option {
	return func(c *Client) { c.br = newBreaker(trips, cooldown) }
}

// WithLogger sets the structured logger; breaker transitions log at Warn,
// per-retry detail at Debug.
func WithLogger(l *slog.Logger) Option {
	return func(c *Client) {
		if l != nil {
			c.log = l
		}
	}
}

// WithRegistry sets the metrics registry (default obs.Default()).
func WithRegistry(r *obs.Registry) Option {
	return func(c *Client) {
		if r != nil {
			c.reg = r
		}
	}
}

// New builds a client for the server at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	return NewMulti([]string{base}, opts...)
}

// NewMulti builds a client that fails over across several equivalent
// endpoints — typically [primary, standby]. Attempts start at the
// preferred endpoint (initially the first); a connection error, 5xx or 429
// rotates preference to the next one, and a definitive response pins it, so
// after a failover all traffic converges on the promoted standby. Combined
// with the server's stale-epoch and follower-catching-up 503s this makes a
// primary crash invisible to Run loops: the deposed node sheds, the breaker
// quarantines it, and retries land on the survivor.
func NewMulti(bases []string, opts ...Option) *Client {
	if len(bases) == 0 {
		bases = []string{""}
	}
	c := &Client{
		hc:       &http.Client{},
		attempts: DefaultAttempts,
		perTry:   DefaultPerTryTimeout,
		boBase:   DefaultBackoffBase,
		boMax:    DefaultBackoffMax,
		br:       newBreaker(DefaultBreakerTrips, DefaultBreakerCooldown),
		log:      slog.Default(),
		reg:      obs.Default(),
		rng:      mrand.New(mrand.NewSource(time.Now().UnixNano())),
	}
	for _, base := range bases {
		host := base
		if u, err := url.Parse(base); err == nil && u.Host != "" {
			host = u.Host
		}
		c.eps = append(c.eps, endpoint{base: base, host: host})
	}
	for _, opt := range opts {
		opt(c)
	}
	c.br.log = c.log
	c.br.bind(c.reg)
	c.mRequests = c.reg.Counter("client.requests")
	c.mAttempts = c.reg.Counter("client.attempts")
	c.mRetries = c.reg.Counter("client.retries")
	c.mFailures = c.reg.Counter("client.failures")
	c.mFailovers = c.reg.Counter("client.endpoint_failovers")
	return c
}

// response is one complete, body-read HTTP exchange.
type response struct {
	status int
	header http.Header
	body   []byte
}

// do runs one logical call with the full retry stack. The sid label is the
// session id (or "" before one exists) threaded into logs so breaker events
// are attributable. Retryable outcomes: transport errors, body-read errors,
// 429 and every 5xx. Any other status returns to the caller.
func (c *Client) do(ctx context.Context, method, path, sid string, hdr http.Header, body []byte) (*response, error) {
	c.mRequests.Inc()
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.mRetries.Inc()
		}
		ep, idx := c.pickEndpoint()
		if !c.br.allow(ep.host, sid) {
			// Fail-fast locally, but keep the attempt loop going: the
			// breaker counts as a (cheap) failed attempt, and the backoff
			// sleep gives the cooldown a chance to elapse into half-open.
			lastErr = fmt.Errorf("%w (host %s)", ErrBreakerOpen, ep.host)
			if err := c.sleep(ctx, c.backoff(attempt, 0)); err != nil {
				return nil, err
			}
			continue
		}
		resp, retryable, err := c.attempt(ctx, method, ep.base, path, hdr, body)
		c.mAttempts.Inc()
		if err == nil && !retryable {
			c.br.success(ep.host)
			c.pinEndpoint(idx)
			return resp, nil
		}
		if err == nil {
			// Shed response (429/5xx): the server is up and talking, which
			// resets the breaker — but a shedding node (draining, follower
			// catching up, or fenced after a failover) is exactly when the
			// standby should get the next attempt, so rotate as well as
			// back off, honoring Retry-After as a floor.
			c.br.success(ep.host)
			c.rotateEndpoint(idx, sid, fmt.Sprintf("status %d", resp.status))
			lastErr = fmt.Errorf("client: server returned %d", resp.status)
			if err := c.sleep(ctx, c.backoff(attempt, retryAfterHint(resp.header))); err != nil {
				return nil, err
			}
			continue
		}
		c.br.failure(ep.host, sid)
		c.rotateEndpoint(idx, sid, "transport error")
		lastErr = err
		c.log.Debug("client attempt failed", "method", method, "path", path, "host", ep.host, "attempt", attempt+1, "err", err)
		if err := c.sleep(ctx, c.backoff(attempt, 0)); err != nil {
			return nil, err
		}
	}
	c.mFailures.Inc()
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrAttemptsExhausted, c.attempts, lastErr)
}

// pickEndpoint returns the endpoint the next attempt should hit: the first
// one at or after the preferred index whose breaker is not in its open
// cooldown. When every endpoint is quarantined it returns the preferred one
// and lets allow() produce the breaker-open outcome.
func (c *Client) pickEndpoint() (endpoint, int) {
	c.emu.Lock()
	start := c.preferred
	c.emu.Unlock()
	n := len(c.eps)
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if !c.br.quarantined(c.eps[idx].host) {
			return c.eps[idx], idx
		}
	}
	return c.eps[start%n], start % n
}

// pinEndpoint makes idx the preferred endpoint after a definitive response.
func (c *Client) pinEndpoint(idx int) {
	c.emu.Lock()
	c.preferred = idx
	c.emu.Unlock()
}

// rotateEndpoint moves preference off a failing endpoint so the next
// attempt starts at the other one. No-op with a single endpoint.
func (c *Client) rotateEndpoint(idx int, sid, why string) {
	if len(c.eps) < 2 {
		return
	}
	c.emu.Lock()
	rotated := false
	if c.preferred == idx {
		c.preferred = (idx + 1) % len(c.eps)
		rotated = true
	}
	next := c.eps[c.preferred].host
	c.emu.Unlock()
	if rotated {
		c.mFailovers.Inc()
		c.log.Warn("client failing over to next endpoint",
			"from", c.eps[idx].host, "to", next, "session", sid, "reason", why)
	}
}

// attempt performs one wire attempt. It returns (resp, false, nil) on a
// definitive response, (resp, true, nil) on a retryable status, and
// (nil, _, err) on a transport or body-read failure.
func (c *Client) attempt(ctx context.Context, method, base, path string, hdr http.Header, body []byte) (*response, bool, error) {
	// Chaos hook: lets the fault plans that exercise every other subsystem
	// inject latency or transport errors into the SDK itself.
	if err := fault.Hit(fault.PointClientReq); err != nil {
		return nil, true, err
	}
	actx := ctx
	if c.perTry > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.perTry)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, base+path, rd)
	if err != nil {
		return nil, false, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxResponseBytes))
	if err != nil {
		// Truncated or reset mid-body: the request may have been applied
		// server-side, but the exactly-once protocol makes the retry safe.
		return nil, true, fmt.Errorf("client: read response body: %w", err)
	}
	out := &response{status: res.StatusCode, header: res.Header, body: data}
	retryable := res.StatusCode == http.StatusTooManyRequests || res.StatusCode >= 500
	return out, retryable, nil
}

// backoff computes the jittered sleep before attempt+1: base·2^attempt
// capped at max, jittered to [d/2, d), floored by the server's Retry-After
// hint when present.
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	d := c.boBase << attempt
	if d > c.boMax || d <= 0 {
		d = c.boMax
	}
	c.rmu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rmu.Unlock()
	if d < floor {
		d = floor
	}
	return d
}

// sleep waits for d or the context, whichever ends first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint parses a Retry-After header into a backoff floor,
// accepting both RFC 9110 §10.2.3 forms: delta-seconds and HTTP-date.
func retryAfterHint(h http.Header) time.Duration {
	return retryAfterAt(h, time.Now())
}

// retryAfterAt is retryAfterHint against an injected clock, so the
// HTTP-date arithmetic is testable. Absent, unparseable, negative or
// already-past values all return 0 — "use the backoff schedule".
func retryAfterAt(h http.Header, now time.Time) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	// http.ParseTime tries the three date layouts RFC 9110 admits
	// (IMF-fixdate, RFC 850, ANSI C asctime).
	t, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := t.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// newIdemKey mints a 128-bit idempotency key from crypto/rand. Never the
// jitter rng: two test clients built with the same seed must still generate
// distinct keys.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to a
		// time-derived key rather than refusing to create sessions.
		return fmt.Sprintf("t-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
