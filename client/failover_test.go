package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"isrl/internal/obs"
)

// TestRetryAfterParsing pins both RFC 9110 §10.2.3 Retry-After forms:
// delta-seconds and the three admissible HTTP-date layouts, plus every
// degenerate value that must fall back to the backoff schedule.
func TestRetryAfterParsing(t *testing.T) {
	now := time.Date(2025, time.March, 9, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
	}{
		{"absent", "", 0},
		{"delta seconds", "7", 7 * time.Second},
		{"delta zero", "0", 0},
		{"delta negative", "-3", 0},
		{"imf fixdate", "Sun, 09 Mar 2025 12:00:30 GMT", 30 * time.Second},
		{"rfc850", "Sunday, 09-Mar-25 12:02:00 GMT", 2 * time.Minute},
		{"asctime", "Sun Mar  9 12:00:05 2025", 5 * time.Second},
		{"date in the past", "Sun, 09 Mar 2025 11:59:00 GMT", 0},
		{"date equal to now", "Sun, 09 Mar 2025 12:00:00 GMT", 0},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := http.Header{}
			if c.value != "" {
				h.Set("Retry-After", c.value)
			}
			if got := retryAfterAt(h, now); got != c.want {
				t.Errorf("retryAfterAt(%q) = %v, want %v", c.value, got, c.want)
			}
		})
	}
}

// TestClientFailsOverToSecondEndpoint pins the multi-endpoint contract: a
// dead first endpoint costs exactly one failed attempt before the client
// rotates to the standby and succeeds, counting one failover.
func TestClientFailsOverToSecondEndpoint(t *testing.T) {
	var hits atomic.Int64
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
	}))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	c := NewMulti([]string{dead.URL, good.URL},
		WithRegistry(obs.NewRegistry()),
		WithJitterSeed(1),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
		WithAttempts(4),
	)
	resp, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", "s1", nil, nil)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp.status != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.status)
	}
	if hits.Load() != 1 {
		t.Errorf("standby saw %d requests, want 1", hits.Load())
	}
	if c.mFailovers.Value() == 0 {
		t.Error("client.endpoint_failovers never incremented")
	}
}

// TestClientFailsOverOnShedding pins the 503 path: a follower answering 503
// (shedding, not dead — its breaker must NOT trip) pushes traffic to the
// other endpoint, and once a definitive response arrives the client pins
// there instead of bouncing back.
func TestClientFailsOverOnShedding(t *testing.T) {
	var followerHits, primaryHits atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerHits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"follower catching up"}`, http.StatusServiceUnavailable)
	}))
	defer follower.Close()
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
	}))
	defer primary.Close()

	c := NewMulti([]string{follower.URL, primary.URL},
		WithRegistry(obs.NewRegistry()),
		WithJitterSeed(1),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
		WithAttempts(6),
	)
	for i := 0; i < 3; i++ {
		resp, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", "s1", nil, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.status != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.status)
		}
	}
	if got := followerHits.Load(); got != 1 {
		t.Errorf("shedding endpoint saw %d requests, want 1 (client should pin to the primary)", got)
	}
	if got := primaryHits.Load(); got != 3 {
		t.Errorf("primary saw %d requests, want 3", got)
	}
}

// TestClientSkipsQuarantinedEndpoint pins the breaker/endpoint interplay:
// a host whose breaker is inside its open cooldown is skipped at pick time,
// so a request preferring the dead endpoint goes straight to the standby
// without burning an attempt (and a failover rotation) on the corpse.
func TestClientSkipsQuarantinedEndpoint(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
	}))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadHost := dead.Listener.Addr().String()
	deadURL := dead.URL
	dead.Close()

	c := NewMulti([]string{deadURL, good.URL},
		WithRegistry(obs.NewRegistry()),
		WithJitterSeed(1),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
		WithAttempts(4),
		WithBreaker(1, time.Minute),
	)
	// One failed attempt opens the dead host's breaker and fails over.
	if _, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", "s1", nil, nil); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if !c.br.quarantined(deadHost) {
		t.Fatal("dead endpoint's breaker never opened")
	}

	// Force preference back onto the quarantined endpoint: the pick must
	// side-step it without a rotation.
	c.pinEndpoint(0)
	fails := c.mFailovers.Value()
	if _, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", "s1", nil, nil); err != nil {
		t.Fatalf("post-trip request: %v", err)
	}
	if got := c.mFailovers.Value(); got != fails {
		t.Errorf("post-trip request rotated endpoints (%d -> %d failovers); want direct pick of the live host", fails, got)
	}
}
