package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Question is one pairwise comparison the server wants answered. Round is
// the 1-based index the answer must carry — the exactly-once handle.
type Question struct {
	First  []float64
	Second []float64
	Attrs  []string
	Round  int
}

// Result is the outcome of a finished search.
type Result struct {
	PointIndex     int
	Point          []float64
	Rounds         int
	Degraded       bool
	DegradedReason string
}

// Wire shapes, mirroring internal/server's JSON. Duplicated by design: the
// SDK is the public contract and must not reach into internal packages for
// its types.
type wireQuestion struct {
	First  []float64 `json:"first"`
	Second []float64 `json:"second"`
	Attrs  []string  `json:"attrs"`
}

type wireResult struct {
	PointIndex     int       `json:"point_index"`
	Point          []float64 `json:"point"`
	Rounds         int       `json:"rounds"`
	Degraded       bool      `json:"degraded"`
	DegradedReason string    `json:"degraded_reason"`
}

type wireState struct {
	ID       string        `json:"id"`
	Done     bool          `json:"done"`
	Round    int           `json:"round"`
	Question *wireQuestion `json:"question"`
	Result   *wireResult   `json:"result"`
	Error    string        `json:"error"`
}

type wireAnswer struct {
	PreferFirst bool `json:"prefer_first"`
	Round       int  `json:"round"`
}

type wireConflict struct {
	Error string `json:"error"`
	Round int    `json:"round"`
}

type wireError struct {
	Error string `json:"error"`
}

// Session is a live interactive search on the server. It is not safe for
// concurrent use — like core.Session, one goroutine drives the protocol.
type Session struct {
	c     *Client
	id    string
	state wireState
}

// Create starts a session. The request carries a crypto-random
// Idempotency-Key, so however many times the retry loop re-sends it, the
// server materializes exactly one session.
func (c *Client) Create(ctx context.Context) (*Session, error) {
	hdr := http.Header{"Idempotency-Key": []string{newIdemKey()}}
	resp, err := c.do(ctx, http.MethodPost, "/sessions", "", hdr, []byte("{}"))
	if err != nil {
		return nil, err
	}
	s := &Session{c: c}
	if err := s.absorb(resp, http.StatusCreated, http.StatusOK); err != nil {
		return nil, err
	}
	s.id = s.state.ID
	return s, nil
}

// ID returns the server-assigned session id ("" before Create succeeds).
func (s *Session) ID() string { return s.id }

// Done reports whether the search has finished (Result is available).
func (s *Session) Done() bool { return s.state.Done }

// Question returns the pending question, or nil once the session is done.
func (s *Session) Question() *Question {
	if s.state.Done || s.state.Question == nil {
		return nil
	}
	return &Question{
		First:  s.state.Question.First,
		Second: s.state.Question.Second,
		Attrs:  s.state.Question.Attrs,
		Round:  s.state.Round,
	}
}

// Answer submits the preference for the pending question, tagged with its
// round index. Lost responses are survivable: the retried POST is a
// duplicate round, which the server answers with the stored next state. A
// 409 comes back as *ConflictError carrying the round the server expects.
func (s *Session) Answer(ctx context.Context, preferFirst bool) error {
	body, err := json.Marshal(wireAnswer{PreferFirst: preferFirst, Round: s.state.Round})
	if err != nil {
		return err
	}
	resp, err := s.c.do(ctx, http.MethodPost, "/sessions/"+s.id+"/answer", s.id, nil, body)
	if err != nil {
		return err
	}
	return s.absorb(resp, http.StatusOK)
}

// Get refreshes the session snapshot — the resynchronization primitive after
// a ConflictError.
func (s *Session) Get(ctx context.Context) error {
	resp, err := s.c.do(ctx, http.MethodGet, "/sessions/"+s.id, s.id, nil, nil)
	if err != nil {
		return err
	}
	return s.absorb(resp, http.StatusOK)
}

// Abort deletes the session server-side. Safe on finished sessions (the
// server answers 404, reported as *APIError).
func (s *Session) Abort(ctx context.Context) error {
	resp, err := s.c.do(ctx, http.MethodDelete, "/sessions/"+s.id, s.id, nil, nil)
	if err != nil {
		return err
	}
	if resp.status != http.StatusNoContent {
		return apiErr(resp)
	}
	return nil
}

// Result returns the finished search's outcome. It errors when the session
// is still running or ended in a server-side error.
func (s *Session) Result() (*Result, error) {
	if !s.state.Done {
		return nil, fmt.Errorf("client: session %s not finished", s.id)
	}
	if s.state.Error != "" {
		return nil, fmt.Errorf("client: session %s failed server-side: %s", s.id, s.state.Error)
	}
	if s.state.Result == nil {
		return nil, fmt.Errorf("client: session %s finished without a result", s.id)
	}
	r := Result(*s.state.Result)
	return &r, nil
}

// Run is the whole protocol in one call: create a session, feed every
// question to choose (true: prefer First), and return the final result. On a
// round conflict — possible only if some other client drove the same
// session — it resynchronizes once with Get and continues.
func (c *Client) Run(ctx context.Context, choose func(q Question) bool) (*Result, error) {
	s, err := c.Create(ctx)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		q := s.Question()
		if q == nil {
			// No question and not done: a state gap (e.g. replayed create
			// against a mid-flight session). Refresh and re-check.
			if err := s.Get(ctx); err != nil {
				return nil, err
			}
			continue
		}
		if err := s.Answer(ctx, choose(*q)); err != nil {
			var ce *ConflictError
			if errors.As(err, &ce) {
				if gerr := s.Get(ctx); gerr != nil {
					return nil, gerr
				}
				continue
			}
			return nil, err
		}
	}
	return s.Result()
}

// absorb decodes one response into the session snapshot, mapping 409s to
// *ConflictError and other unexpected statuses to *APIError.
func (s *Session) absorb(resp *response, want ...int) error {
	for _, w := range want {
		if resp.status == w {
			var st wireState
			if err := json.Unmarshal(resp.body, &st); err != nil {
				return fmt.Errorf("client: decode state: %w", err)
			}
			s.state = st
			return nil
		}
	}
	if resp.status == http.StatusConflict {
		var wc wireConflict
		if err := json.Unmarshal(resp.body, &wc); err == nil && wc.Round > 0 {
			return &ConflictError{Expected: wc.Round, Message: wc.Error}
		}
	}
	return apiErr(resp)
}

// apiErr turns an unexpected response into *APIError, salvaging the server's
// error string when the body is the usual {"error": ...} shape.
func apiErr(resp *response) error {
	var we wireError
	msg := ""
	if err := json.Unmarshal(resp.body, &we); err == nil {
		msg = we.Error
	}
	if msg == "" {
		msg = string(resp.body)
	}
	return &APIError{Status: resp.status, Message: msg}
}
