package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"isrl/internal/obs"
)

func testClient(t *testing.T, base string, opts ...Option) *Client {
	t.Helper()
	all := append([]Option{
		WithRegistry(obs.NewRegistry()),
		WithJitterSeed(1),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
	}, opts...)
	return New(base, all...)
}

// Transient 500s are retried until the server comes back.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	resp, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", "s1", nil, nil)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp.status != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.status)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if c.mRetries.Value() != 2 {
		t.Errorf("client.retries = %d, want 2", c.mRetries.Value())
	}
}

// Non-retryable 4xx statuses return immediately without burning attempts.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown session"}`))
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	resp, err := c.do(context.Background(), http.MethodGet, "/sessions/nope", "", nil, nil)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp.status != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.status)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retries on 404)", got)
	}
}

// A Retry-After header floors the backoff: the retry must not arrive before
// the hinted delay elapses.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			secondAt = time.Now()
			w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
		}
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	if _, err := c.do(context.Background(), http.MethodGet, "/x", "", nil, nil); err != nil {
		t.Fatalf("do: %v", err)
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Errorf("retry arrived %v after the 429, want >= ~1s (Retry-After floor ignored)", gap)
	}
}

// The caller's context deadline cuts the retry loop short.
func TestClientContextDeadlineStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := testClient(t, ts.URL, WithAttempts(50))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.do(ctx, http.MethodGet, "/x", "", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ran %v past a 100ms deadline", elapsed)
	}
}

// The per-try timeout bounds a black-holed attempt so the retry loop moves
// on instead of hanging until the whole deadline.
func TestClientPerTryTimeout(t *testing.T) {
	var calls atomic.Int64
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-block // black hole the first attempt
			return
		}
		w.Write([]byte(`{"id":"s1","done":false,"round":1}`))
	}))
	defer ts.Close()
	defer close(block) // LIFO: unblock the handler before ts.Close waits on it

	c := testClient(t, ts.URL, WithPerTryTimeout(50*time.Millisecond))
	resp, err := c.do(context.Background(), http.MethodGet, "/x", "", nil, nil)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp.status != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.status)
	}
	if calls.Load() < 2 {
		t.Errorf("black-holed attempt was not retried")
	}
}

// Breaker state machine: trips consecutive failures open it, the cooldown
// admits a half-open probe, and the probe's outcome decides.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second)
	b.now = func() time.Time { return now }
	b.bind(obs.NewRegistry())

	if !b.allow("h", "s1") {
		t.Fatal("closed breaker rejected")
	}
	b.failure("h", "s1")
	if !b.allow("h", "s1") {
		t.Fatal("one failure below threshold opened the breaker")
	}
	b.failure("h", "s1")
	if b.allow("h", "s1") {
		t.Fatal("breaker stayed closed after reaching the trip threshold")
	}
	if b.mOpened.Value() != 1 {
		t.Errorf("client.breaker.opened = %d, want 1", b.mOpened.Value())
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Second)
	if !b.allow("h", "s1") {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.allow("h", "s1") {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// Failed probe re-opens for another cooldown.
	b.failure("h", "s1")
	if b.allow("h", "s1") {
		t.Fatal("breaker closed after a failed probe")
	}
	now = now.Add(2 * time.Second)
	if !b.allow("h", "s1") {
		t.Fatal("second probe rejected after re-open cooldown")
	}
	b.success("h")
	if !b.allow("h", "s1") || !b.allow("h", "s1") {
		t.Fatal("breaker not fully closed after successful probe")
	}
	if b.mClosed.Value() != 1 {
		t.Errorf("client.breaker.closed = %d, want 1", b.mClosed.Value())
	}
}

// A dead host trips the breaker, and requests are rejected locally (cheap)
// while it is open.
func TestClientBreakerOpensOnDeadHost(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // dead: connections refused

	c := testClient(t, ts.URL,
		WithAttempts(6),
		WithBreaker(2, time.Hour), // opens fast, never recovers in-test
		WithPerTryTimeout(100*time.Millisecond))
	_, err := c.do(context.Background(), http.MethodGet, "/x", "", nil, nil)
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v, want attempts exhausted", err)
	}
	if c.br.mOpened.Value() != 1 {
		t.Errorf("breaker never opened against a dead host")
	}
	if c.br.mRejected.Value() == 0 {
		t.Errorf("open breaker never rejected locally")
	}
}

// A 409 with a round body surfaces as *ConflictError carrying the expected
// round.
func TestClientConflictErrorMapping(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"round 9 out of sync","round":4}`))
	}))
	defer ts.Close()

	c := testClient(t, ts.URL)
	s := &Session{c: c, id: "s1"}
	s.state.Round = 9
	err := s.Answer(context.Background(), true)
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConflictError", err)
	}
	if ce.Expected != 4 {
		t.Errorf("ConflictError.Expected = %d, want 4", ce.Expected)
	}
}
