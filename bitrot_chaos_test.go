package isrl

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"isrl/internal/netfault"
	"isrl/internal/repl"
	"isrl/internal/wal"
)

// TestChaosBitRotScrubRepair is the acceptance gate for self-healing
// durability: a replicated pair runs live sessions with tiny segments so
// sealed history accumulates mid-run; bytes are flipped in one sealed
// segment on EACH node; scrubbing detects and quarantines both, and the
// anti-entropy digest exchange heals both sides byte-identically from the
// peer — all while client traffic keeps flowing through a kill-prone
// proxy. The primary is then killed outright, the follower promotes, every
// session finishes byte-identical to a fault-free solo run, and a repair
// offer carrying the dead primary's stale epoch bounces off the promoted
// node without touching its quarantine.
func TestChaosBitRotScrubRepair(t *testing.T) {
	// Baseline: fault-free solo run.
	cleanDir := t.TempDir()
	cleanSrv, cleanJ := chaosServer(t, cleanDir)
	cleanTS := httptest.NewServer(cleanSrv)
	want := failoverRun(t, []string{cleanTS.URL}, nil)
	cleanTS.Close()
	cleanJ.Close()

	// The pair, with 512-byte segments so rotations (and thus sealed,
	// scrubbable history) happen every few records. The follower connects
	// before any append, so it re-frames the identical record stream into
	// an identical segment layout — the precondition for raw-byte repair.
	dirA, dirB := t.TempDir(), t.TempDir()
	fLog, _, err := wal.Open(dirB, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer fLog.Close()
	fNode, err := repl.NewFollower(fLog, "127.0.0.1:0", repl.Options{
		Heartbeat:     25 * time.Millisecond,
		PromoteAfter:  250 * time.Millisecond,
		PromoteJitter: 50 * time.Millisecond,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fSrv := replServer(t, fLog, fNode)
	fNode.OnPromote(func(epoch uint64, states []wal.SessionState) {
		n := fSrv.Recover(states)
		t.Logf("promoted at epoch %d with %d live sessions", epoch, n)
	})
	fNode.Start()
	defer fNode.Close()
	fTS := httptest.NewServer(fSrv)
	defer fTS.Close()

	pLog, _, err := wal.Open(dirA, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer pLog.Close()
	pNode := repl.NewPrimary(pLog, fNode.Addr(), repl.Options{
		Heartbeat:     25 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
		DigestEvery:   25 * time.Millisecond,
		Seed:          8,
	})
	pSrv := replServer(t, pLog, pNode)
	pTS := httptest.NewServer(pSrv)
	defer pTS.Close()
	pNode.Start()
	defer pNode.Close()

	tu, err := url.Parse(pTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netfault.ParsePlan("kill=0.15")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netfault.New(tu.Host, plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Phase one, triggered mid-run: flip a byte in a different sealed
	// segment on each node, scrub both so the damage is quarantined, and
	// wait for the digest exchange to heal both directions.
	rot := func() bool {
		pSealed, fSealed := pLog.SealedSegments(), fLog.SealedSegments()
		if len(pSealed) < 2 || len(fSealed) < 2 ||
			pSealed[0] != fSealed[0] || pSealed[1] != fSealed[1] {
			return false // not enough shared sealed history yet; retry later
		}
		victims := []int{pSealed[0].Seq, fSealed[1].Seq}
		for i, dir := range []string{dirA, dirB} {
			path := filepath.Join(dir, wal.SegName(victims[i]))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read segment for rot: %v", err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for _, l := range []*wal.Log{pLog, fLog} {
			rep, err := l.Scrub(context.Background(), 0)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if rep.Corrupt != 1 {
				t.Fatalf("scrub found %d corrupt segments, want the 1 planted", rep.Corrupt)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if len(pLog.Quarantined()) == 0 && len(fLog.Quarantined()) == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if q := pLog.Quarantined(); len(q) != 0 {
			t.Fatalf("primary never healed %v via anti-entropy", q)
		}
		if q := fLog.Quarantined(); len(q) != 0 {
			t.Fatalf("follower never healed %v via anti-entropy", q)
		}
		for _, seq := range victims {
			a, err := os.ReadFile(filepath.Join(dirA, wal.SegName(seq)))
			if err != nil {
				t.Fatalf("primary segment %d after repair: %v", seq, err)
			}
			b, err := os.ReadFile(filepath.Join(dirB, wal.SegName(seq)))
			if err != nil {
				t.Fatalf("follower segment %d after repair: %v", seq, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("segment %d not byte-identical after repair", seq)
			}
		}
		t.Logf("bit rot healed: segments %v byte-identical again", victims)
		return true
	}

	// Phase two: kill the primary once the follower has fully caught up.
	killed := false
	kill := func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if r, _ := pNode.Lag(); r == 0 {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatal("follower never caught up before the kill")
			}
			time.Sleep(2 * time.Millisecond)
		}
		proxy.Close()
		pNode.Close()
		killed = true
	}
	rotted := false
	hook := func(session, answer int) {
		if !rotted && (session >= 3 || (session == 2 && answer >= 2)) {
			rotted = rot()
		}
		if killed {
			return
		}
		if rotted && ((session == 5 && answer >= 2) || session > 5) {
			kill()
		}
	}
	got := failoverRun(t, []string{"http://" + proxy.Addr(), fTS.URL}, hook)

	if !rotted {
		t.Fatal("bit-rot phase never ran; sealed history never accumulated")
	}
	if !killed {
		t.Fatal("kill switch never fired; the failover path was not exercised")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("results after bit rot + failover differ from fault-free run:\nchaos: %s\nclean: %s", got, want)
	}
	if role := fNode.Role(); role != "primary" {
		t.Errorf("follower role after failover = %q, want primary", role)
	}

	// The stale-epoch gate on repair: quarantine a sealed segment on the
	// promoted node, then offer it the correct bytes from the dead
	// primary's epoch. The promoted node must deny the handshake, ignore
	// the un-greeted payload, and keep the quarantine.
	sealed := fLog.SealedSegments()
	if len(sealed) == 0 {
		t.Fatal("promoted node has no sealed history")
	}
	victim := sealed[0].Seq
	path := filepath.Join(dirB, wal.SegName(victim))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted2 := append([]byte(nil), pristine...)
	rotted2[len(rotted2)/2] ^= 0x01
	if err := os.WriteFile(path, rotted2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fLog.Scrub(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if q := fLog.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantine setup = %v, want [%d]", q, victim)
	}
	offerStaleRepair(t, fNode.Addr(), victim, pristine)
	if q := fLog.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("stale repair offer touched the quarantine: %v", q)
	}
	// An operator-driven local repair (or a new legitimate peer) still works.
	if err := fLog.RepairSegment(victim, pristine); err != nil {
		t.Fatalf("legitimate repair after stale offer: %v", err)
	}

	// Exactly-once audit of the promoted journal, post-repair: every create
	// exactly once, every session's answer rounds strictly increasing.
	recs, err := wal.Records(dirB)
	if err != nil {
		t.Fatal(err)
	}
	creates := 0
	lastRound := map[string]int{}
	for _, r := range recs {
		switch r.Kind {
		case wal.KindCreate:
			creates++
		case wal.KindAnswer:
			if r.Round != lastRound[r.ID]+1 {
				t.Errorf("journaled answer rounds for %s not strictly increasing: %d after %d",
					r.ID, r.Round, lastRound[r.ID])
			}
			lastRound[r.ID] = r.Round
		}
	}
	if creates != chaosSessions {
		t.Errorf("promoted journal holds %d create records, want %d", creates, chaosSessions)
	}
}

// replWire is the subset of the replication wire message this test speaks:
// one CRC32 wal frame of JSON, built here from the documented field names
// rather than the repl package's unexported type — which also pins the
// wire format itself.
type replWire struct {
	T     string `json:"t"`
	Epoch uint64 `json:"ep,omitempty"`
	SID   uint64 `json:"sid,omitempty"`
	Seq   int    `json:"seq,omitempty"`
	Data  []byte `json:"d,omitempty"`
	Err   string `json:"err,omitempty"`
}

func replWireSend(conn net.Conn, m replWire) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	frame, err := wal.Frame(payload, 64<<20)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	_, err = conn.Write(frame)
	return err
}

func replWireRecv(conn net.Conn) (replWire, error) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	payload, err := wal.ReadFrame(conn, 64<<20)
	if err != nil {
		return replWire{}, err
	}
	var m replWire
	err = json.Unmarshal(payload, &m)
	return m, err
}

// offerStaleRepair plays a fenced ex-primary offering segment bytes at the
// dead epoch: the hello is denied outright, and a payload shoved down a
// fresh connection without a handshake must be dropped unseen.
func offerStaleRepair(t *testing.T, addr string, seq int, data []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := replWireSend(conn, replWire{T: "hello", Epoch: 0, SID: 7}); err != nil {
		t.Fatal(err)
	}
	m, err := replWireRecv(conn)
	if err != nil || m.T != "deny" {
		t.Fatalf("stale hello reply = %+v, %v; want deny", m, err)
	}
	if m.Epoch == 0 {
		t.Fatal("deny carried no fencing epoch")
	}
	// Second attempt: skip the handshake and push the repair payload cold.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := replWireSend(conn2, replWire{T: "rep", Epoch: 0, Seq: seq, Data: data}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the follower read (and drop) it
}
